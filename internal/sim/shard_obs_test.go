package sim

import (
	"testing"
	"time"
)

// winKey is the deterministic (partition-independent) slice of one window.
type winKey struct {
	Base, Limit, Lookahead Time
	Final                  bool
	Mails                  int
	MailBytes              int64
}

// windowRecorder copies the deterministic fields of every observed window.
type windowRecorder struct {
	windows   []winKey
	events    []uint64 // per-window event totals (partition-independent)
	mails     int
	mailBytes int64
}

func (r *windowRecorder) ShardWindow(w *ShardWindowStats) {
	var total uint64
	for _, ld := range w.Shards {
		total += ld.Events
	}
	r.windows = append(r.windows, winKey{
		Base: w.Base, Limit: w.Limit, Lookahead: w.Lookahead,
		Final: w.Final, Mails: w.Mails, MailBytes: w.MailBytes,
	})
	r.events = append(r.events, total)
	r.mails += w.Mails
	r.mailBytes += w.MailBytes
}

// TestShardObserverDeterministicAcrossCounts pins the instrumentation's
// own contract: window bounds, per-window event totals, and mailbox volume
// are identical at every shard count, the events sum matches
// ExecutedEvents, and attaching an observer does not perturb execution.
func TestShardObserverDeterministicAcrossCounts(t *testing.T) {
	const horizon = 30 * time.Millisecond
	run := func(shards int, observe bool) (*windowRecorder, string, uint64) {
		envs, logs := shardRig(5)
		g := NewShardGroup(500*time.Microsecond, shards, envs...)
		defer g.Close()
		var rec *windowRecorder
		if observe {
			rec = &windowRecorder{}
			g.SetObserver(rec)
		}
		g.RunUntil(horizon)
		return rec, flattenLogs(logs), g.ExecutedEvents()
	}

	_, wantLog, wantEvents := run(1, false)
	var base *windowRecorder
	for _, shards := range []int{1, 2, 4, 8} {
		rec, log, events := run(shards, true)
		if log != wantLog {
			t.Fatalf("shards=%d: observer perturbed execution", shards)
		}
		if events != wantEvents {
			t.Fatalf("shards=%d: ExecutedEvents = %d, want %d", shards, events, wantEvents)
		}
		var sum uint64
		for _, e := range rec.events {
			sum += e
		}
		if sum != wantEvents {
			t.Fatalf("shards=%d: observed window events sum %d, want %d", shards, sum, wantEvents)
		}
		if len(rec.windows) == 0 {
			t.Fatalf("shards=%d: no windows observed", shards)
		}
		if base == nil {
			base = rec
			continue
		}
		if len(rec.windows) != len(base.windows) {
			t.Fatalf("shards=%d: %d windows, want %d", shards, len(rec.windows), len(base.windows))
		}
		for i := range rec.windows {
			if rec.windows[i] != base.windows[i] || rec.events[i] != base.events[i] {
				t.Fatalf("shards=%d window %d: %+v (events %d), want %+v (events %d)",
					shards, i, rec.windows[i], rec.events[i], base.windows[i], base.events[i])
			}
		}
	}
}

// TestShardObserverCountsMail pins SendSized's observability payload: the
// observer sees every delivered message and its byte volume.
func TestShardObserverCountsMail(t *testing.T) {
	const lookahead = time.Millisecond
	envs := []*Env{NewEnv(1), NewEnv(2)}
	defer envs[0].Close()
	defer envs[1].Close()
	g := NewShardGroup(lookahead, 2, envs...)
	defer g.Close()
	rec := &windowRecorder{}
	g.SetObserver(rec)

	delivered := 0
	envs[0].After(100*time.Microsecond, func() {
		g.SendSized(0, 1, lookahead, 4096, func() { delivered++ })
		g.Send(0, 1, lookahead, func() { delivered++ })
	})
	g.RunUntil(10 * time.Millisecond)
	if delivered != 2 {
		t.Fatalf("delivered %d messages, want 2", delivered)
	}
	if rec.mails != 2 {
		t.Fatalf("observer saw %d mails, want 2", rec.mails)
	}
	if rec.mailBytes != 4096 {
		t.Fatalf("observer saw %d mail bytes, want 4096", rec.mailBytes)
	}
}

// TestShardObserverShardLoads checks the per-shard split: every window's
// shard slice has one slot per shard and the split sums to the window
// total.
func TestShardObserverShardLoads(t *testing.T) {
	envs, _ := shardRig(4)
	g := NewShardGroup(500*time.Microsecond, 4, envs...)
	defer g.Close()
	var windows int
	var sum uint64
	g.SetObserver(shardWindowFunc(func(w *ShardWindowStats) {
		windows++
		if len(w.Shards) != 4 {
			t.Fatalf("window has %d shard slots, want 4", len(w.Shards))
		}
		for _, ld := range w.Shards {
			sum += ld.Events
		}
		if w.Limit <= w.Base && !w.Final {
			t.Fatalf("non-final window did not advance: [%v, %v]", w.Base, w.Limit)
		}
	}))
	g.RunUntil(30 * time.Millisecond)
	if windows == 0 || sum != g.ExecutedEvents() {
		t.Fatalf("windows=%d shard-event sum=%d, want sum=%d", windows, sum, g.ExecutedEvents())
	}
}

type shardWindowFunc func(w *ShardWindowStats)

func (f shardWindowFunc) ShardWindow(w *ShardWindowStats) { f(w) }
