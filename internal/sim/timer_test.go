package sim

import (
	"runtime"
	"testing"
	"time"
)

func TestTimerStopCancels(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	fired := false
	tm := env.AfterFunc(10*time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer not pending after AfterFunc")
	}
	if env.PendingEvents() != 1 {
		t.Fatalf("PendingEvents = %d, want 1", env.PendingEvents())
	}
	if !tm.Stop() {
		t.Fatal("Stop returned false on a pending timer")
	}
	if tm.Pending() {
		t.Fatal("timer still pending after Stop")
	}
	if env.PendingEvents() != 0 {
		t.Fatalf("PendingEvents = %d after Stop, want 0 (cancelled timers must not count)", env.PendingEvents())
	}
	env.RunFor(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	fired := 0
	tm := env.AfterFunc(time.Millisecond, func() { fired++ })
	env.RunFor(10 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1", fired)
	}
	if tm.Stop() {
		t.Fatal("Stop returned true after the timer fired")
	}
	if tm.Pending() {
		t.Fatal("timer pending after firing")
	}
}

// TestTimerHandleSurvivesRecycling checks that a stale handle stays inert
// after its record is recycled into a new timer: stopping the old handle
// must not cancel the new timer.
func TestTimerHandleSurvivesRecycling(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	old := env.AfterFunc(time.Millisecond, func() {})
	env.RunFor(10 * time.Millisecond) // fires; record returns to the free list
	fired := false
	fresh := env.AfterFunc(time.Millisecond, func() { fired = true })
	if old.Stop() {
		t.Fatal("stale handle stopped a recycled record")
	}
	if !fresh.Pending() {
		t.Fatal("fresh timer lost its registration")
	}
	env.RunFor(10 * time.Millisecond)
	if !fired {
		t.Fatal("fresh timer did not fire")
	}
}

// TestWaitTimeoutSignaledLeavesNoTimer is the regression for the timeout
// leak: when the event fires before the deadline, the guard timer must not
// stay live in the queue pinning its closure and inflating PendingEvents.
func TestWaitTimeoutSignaledLeavesNoTimer(t *testing.T) {
	env := NewEnv(1)
	ev := NewEvent(env)
	env.Spawn("waiter", func(p *Proc) {
		if !ev.WaitTimeout(p, time.Hour) {
			t.Error("WaitTimeout reported timeout despite signal")
		}
	})
	env.Spawn("signaler", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ev.Signal()
	})
	env.Run()
	if got := env.PendingEvents(); got != 0 {
		t.Fatalf("PendingEvents = %d after drain, want 0 (stale timeout timer leaked)", got)
	}
	env.Close()
}

// TestWaitTimeoutExpiredLeavesNoWaiter checks the mirror-image teardown: a
// timed-out wait must remove its registration from the event's waiter list,
// so a late Signal has nothing left to wake.
func TestWaitTimeoutExpiredLeavesNoWaiter(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	ev := NewEvent(env)
	env.Spawn("waiter", func(p *Proc) {
		if ev.WaitTimeout(p, time.Millisecond) {
			t.Error("WaitTimeout reported signal despite timeout")
		}
	})
	env.RunFor(10 * time.Millisecond)
	if n := len(ev.waiters); n != 0 {
		t.Fatalf("event holds %d waiters after timeout, want 0", n)
	}
	ev.Signal() // must be a no-op wake
	env.RunFor(10 * time.Millisecond)
	if got := env.PendingEvents(); got != 0 {
		t.Fatalf("PendingEvents = %d, want 0", got)
	}
}

// TestCloseFreesGoroutines is the regression for Close's ordering: aborting
// processes after discarding events must unwind every parked goroutine, even
// ones whose wakeups were still queued.
func TestCloseFreesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	env := NewEnv(1)
	ev := NewEvent(env)
	for i := 0; i < 20; i++ {
		env.Spawn("sleeper", func(p *Proc) { p.Sleep(time.Hour) })
		env.Spawn("waiter", func(p *Proc) { ev.Wait(p) })
		env.Spawn("timed", func(p *Proc) { ev.WaitTimeout(p, time.Hour) })
	}
	env.RunFor(time.Millisecond) // park everyone
	// Close hooks run after the processes unwind and the queues are
	// discarded — the window where subsystems release externally pinned
	// resources (e.g. in-flight DMA chunk fences).
	var hooks []int
	env.OnClose(func() {
		if env.PendingEvents() != 0 {
			t.Error("OnClose hook ran before events were discarded")
		}
		hooks = append(hooks, 1)
	})
	env.OnClose(func() { hooks = append(hooks, 2) })
	env.Close()
	if len(hooks) != 2 || hooks[0] != 1 || hooks[1] != 2 {
		t.Fatalf("OnClose hooks ran as %v, want [1 2]", hooks)
	}
	env.Close() // idempotent: hooks must not run twice
	if len(hooks) != 2 {
		t.Fatalf("OnClose hooks re-ran on second Close: %v", hooks)
	}
	ran := false
	env.OnClose(func() { ran = true }) // on a closed env, runs immediately
	if !ran {
		t.Fatal("OnClose on a closed env did not run the hook")
	}
	// Aborted goroutines finish asynchronously after their final rendezvous.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestZeroDelayFIFOOrder pins the heap/ring ordering invariant: events
// already in the heap for the current instant run before anything scheduled
// at that instant via the zero-delay fast path, in (at, seq) order.
func TestZeroDelayFIFOOrder(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	var order []string
	at := 5 * time.Millisecond
	env.After(at, func() {
		order = append(order, "A")
		env.After(0, func() { order = append(order, "C") }) // ring entry
	})
	env.After(at, func() { order = append(order, "B") }) // heap entry at same instant
	env.Run()
	want := []string{"A", "B", "C"}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}
