package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/obs"
	"repro/internal/prof"
)

// Time is a point on the simulation's virtual clock, expressed as the
// duration elapsed since the simulation started.
type Time = time.Duration

// event is a scheduled occurrence: either the resumption of a parked process
// or a callback executed in scheduler context. Events are plain values,
// stored inline in the scheduler's 4-ary heap and same-instant FIFO ring, so
// steady-state scheduling allocates nothing.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	proc *Proc  // non-nil: resume this process
	fn   func() // non-nil: run this callback in scheduler context
	tmr  *timerRec
}

// eventBefore is the scheduling order: earliest timestamp first, FIFO within
// one instant.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// timerRec is the cancellation record behind a Timer handle. Records are
// recycled through the Env's free list; the generation counter invalidates
// stale handles to recycled records.
type timerRec struct {
	gen       uint64
	cancelled bool
	fn        func()
	next      *timerRec // free-list link
}

// Timer is a handle on a pending AfterFunc callback.
type Timer struct {
	env *Env
	rec *timerRec
	gen uint64
}

// Stop cancels the callback, reporting whether it was still pending. A
// stopped callback never runs; its closure is released immediately and the
// queue slot is reclaimed lazily as the scheduler reaches it.
func (t Timer) Stop() bool {
	if t.rec == nil || t.rec.gen != t.gen || t.rec.cancelled {
		return false
	}
	t.rec.cancelled = true
	t.rec.fn = nil
	t.env.dead++
	return true
}

// Pending reports whether the callback has yet to fire or be stopped.
func (t Timer) Pending() bool {
	return t.rec != nil && t.rec.gen == t.gen && !t.rec.cancelled
}

// Env is a simulation environment: a virtual clock, an event queue, and the
// set of live processes. An Env is not safe for concurrent use; all calls
// must come either from process context or from the single goroutine driving
// Run/RunUntil/Step.
//
// The event queue is two structures: a 4-ary min-heap of future events and a
// FIFO ring for events scheduled at the current instant (Yield, zero-delay
// wakeups), which bypass the heap entirely. Heap entries at the current
// instant always predate — and therefore run before — every ring entry, so
// the combined order is exactly the (timestamp, sequence) order a single
// heap would produce.
type Env struct {
	now      Time
	heap     []event // future events, 4-ary min-heap by (at, seq)
	fifo     []event // events at the current instant, FIFO from fifoHead
	fifoHead int
	seq      uint64
	dead     int // stopped timers still buried in the queues
	procs    map[*Proc]struct{}
	rng      *rand.Rand
	sched    chan struct{} // process -> scheduler rendezvous
	current  *Proc         // process currently executing, if any
	closed   bool

	timerFree  *timerRec // recycled cancellation records
	waiterFree *waiter   // recycled park registrations

	// executed counts events dispatched by Step, the simulator-throughput
	// numerator the shardscale sweep reports as events/s.
	executed uint64
	// closeHooks run at the end of Close, after processes unwind and the
	// queues are discarded — the point where external resources pinned by
	// aborted processes (in-flight DMA completion fences) can be released.
	closeHooks []func()

	// Observability attachments, both optional (nil = disabled). They live
	// on the Env so every subsystem constructed against it finds them
	// without signature changes; the scheduler itself never touches them.
	tracer   *obs.Tracer
	metrics  *obs.Registry
	profiler *prof.Profiler
}

// NewEnv returns a fresh environment whose clock reads zero. The seed fixes
// the environment's random stream; equal seeds give bit-identical runs.
func NewEnv(seed int64) *Env {
	return &Env{
		procs: make(map[*Proc]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
		sched: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random stream.
func (e *Env) Rand() *rand.Rand { return e.rng }

// SetTracer attaches a span tracer (nil disables tracing) and binds its
// clock to this environment's virtual time. Attach before constructing
// subsystems: they capture the tracer at construction.
func (e *Env) SetTracer(t *obs.Tracer) {
	e.tracer = t
	t.SetNow(func() time.Duration { return e.now })
}

// Tracer returns the attached tracer, nil when tracing is disabled.
func (e *Env) Tracer() *obs.Tracer { return e.tracer }

// SetMetrics attaches a metrics registry (nil disables metrics). Attach
// before constructing subsystems: they create their instruments at
// construction.
func (e *Env) SetMetrics(r *obs.Registry) { e.metrics = r }

// Metrics returns the attached registry, nil when metrics are disabled.
func (e *Env) Metrics() *obs.Registry { return e.metrics }

// SetProfiler attaches a critical-path profiler (nil disables profiling)
// and binds its clock to this environment's virtual time. Like SetTracer,
// attach before constructing subsystems: they capture the profiler at
// construction.
func (e *Env) SetProfiler(pf *prof.Profiler) {
	e.profiler = pf
	pf.SetNow(func() time.Duration { return e.now })
}

// Profiler returns the attached profiler, nil when profiling is disabled.
func (e *Env) Profiler() *prof.Profiler { return e.profiler }

// schedule inserts an event at absolute time at (clamped to now).
func (e *Env) schedule(at Time, p *Proc, fn func()) {
	e.push(event{at: at, proc: p, fn: fn})
}

func (e *Env) push(ev event) {
	if ev.at < e.now {
		ev.at = e.now
	}
	ev.seq = e.seq
	e.seq++
	if ev.at == e.now {
		// Same-instant fast path: the ring preserves FIFO order and skips
		// the heap's sift entirely.
		e.fifo = append(e.fifo, ev)
		return
	}
	e.heapPush(ev)
}

// After schedules fn to run in scheduler context d from now. It may be called
// from process context or from outside the simulation.
func (e *Env) After(d Time, fn func()) {
	if fn == nil {
		panic("sim: After with nil callback")
	}
	e.schedule(e.now+d, nil, fn)
}

// AfterFunc schedules fn like After and returns a Timer that can cancel it.
// The cancellation record comes from a free list, so the steady-state
// schedule/fire/stop cycle does not allocate.
func (e *Env) AfterFunc(d Time, fn func()) Timer {
	if fn == nil {
		panic("sim: AfterFunc with nil callback")
	}
	rec := e.allocTimer()
	rec.fn = fn
	e.push(event{at: e.now + d, tmr: rec})
	return Timer{env: e, rec: rec, gen: rec.gen}
}

func (e *Env) allocTimer() *timerRec {
	if r := e.timerFree; r != nil {
		e.timerFree = r.next
		r.next = nil
		return r
	}
	return &timerRec{}
}

// releaseTimer recycles a record once its event leaves the queue, bumping
// the generation so outstanding handles go stale.
func (e *Env) releaseTimer(r *timerRec) {
	r.gen++
	r.cancelled = false
	r.fn = nil
	r.next = e.timerFree
	e.timerFree = r
}

// getWaiter recycles or allocates a park registration.
func (e *Env) getWaiter(p *Proc) *waiter {
	if w := e.waiterFree; w != nil {
		e.waiterFree = w.next
		w.p, w.woke, w.timedOut, w.next = p, false, false, nil
		return w
	}
	return &waiter{p: p}
}

// putWaiter returns a registration to the free list. Callers must guarantee
// no wait list or timer closure still references it.
func (e *Env) putWaiter(w *waiter) {
	w.p = nil
	w.next = e.waiterFree
	e.waiterFree = w
}

// prune discards stopped timer events sitting at the head of either queue so
// peeks and pops only ever see live events. With no stopped timers buried
// (the overwhelmingly common case) it is a single counter check.
func (e *Env) prune() {
	if e.dead == 0 {
		return
	}
	for e.fifoHead < len(e.fifo) {
		ev := &e.fifo[e.fifoHead]
		if ev.tmr == nil || !ev.tmr.cancelled {
			break
		}
		e.releaseTimer(ev.tmr)
		e.dead--
		*ev = event{}
		e.fifoHead++
	}
	if e.fifoHead == len(e.fifo) && len(e.fifo) > 0 {
		e.fifo = e.fifo[:0]
		e.fifoHead = 0
	}
	for len(e.heap) > 0 && e.heap[0].tmr != nil && e.heap[0].tmr.cancelled {
		ev := e.heapPop()
		e.releaseTimer(ev.tmr)
		e.dead--
	}
}

// pop removes the earliest live event. Heap entries at the current instant
// carry smaller sequence numbers than anything in the ring (they were pushed
// before the clock reached now), so they drain first.
func (e *Env) pop() (event, bool) {
	e.prune()
	if e.fifoHead < len(e.fifo) {
		if len(e.heap) > 0 && e.heap[0].at <= e.now {
			return e.heapPop(), true
		}
		ev := e.fifo[e.fifoHead]
		e.fifo[e.fifoHead] = event{}
		e.fifoHead++
		if e.fifoHead == len(e.fifo) {
			e.fifo = e.fifo[:0]
			e.fifoHead = 0
		}
		return ev, true
	}
	if len(e.heap) > 0 {
		return e.heapPop(), true
	}
	return event{}, false
}

// nextAt returns the timestamp of the earliest live event.
func (e *Env) nextAt() (Time, bool) {
	e.prune()
	if e.fifoHead < len(e.fifo) {
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Env) Step() bool {
	if e.closed {
		return false
	}
	var ev event
	if e.fifoHead == len(e.fifo) && e.dead == 0 {
		// Hot path: nothing at the current instant, no buried cancellations.
		if len(e.heap) == 0 {
			return false
		}
		ev = e.heapPop()
	} else if popped, ok := e.pop(); ok {
		ev = popped
	} else {
		return false
	}
	e.now = ev.at
	e.executed++
	switch {
	case ev.tmr != nil:
		fn := ev.tmr.fn
		e.releaseTimer(ev.tmr)
		fn()
	case ev.proc != nil:
		e.resume(ev.proc, resumeOK)
	case ev.fn != nil:
		ev.fn()
	}
	return true
}

// Run executes events until none remain. Simulations with immortal daemon
// processes (clocks, pollers) never drain; use RunUntil for those.
func (e *Env) Run() {
	for e.Step() {
	}
}

// RunUntil executes every event scheduled at or before t, then advances the
// clock to exactly t.
func (e *Env) RunUntil(t Time) {
	for !e.closed {
		at, ok := e.nextAt()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current instant.
func (e *Env) RunFor(d Time) { e.RunUntil(e.now + d) }

// RunUntilEvery is RunUntil(t) with an observer hook: fn runs at every
// multiple of `every` on the way to t (after all events at or before that
// instant, exactly as a plain RunUntil to the same point would leave the
// environment). The event stream executed is identical to RunUntil(t) —
// fn must observe only, never schedule — so attaching a windowed observer
// (the tsmon seal loop) cannot perturb simulation results. Multiples are
// absolute (k*every), not offsets from the current instant, matching the
// fixed virtual-time window grid.
func (e *Env) RunUntilEvery(t, every Time, fn func(now Time)) {
	if every <= 0 || fn == nil {
		e.RunUntil(t)
		return
	}
	next := (e.now/every)*every + every
	for next <= t {
		e.RunUntil(next)
		fn(next)
		next += every
	}
	e.RunUntil(t)
}

// runWindow executes events strictly before limit (at or before it when
// inclusive is set, for the final window of a bounded run), then advances
// the clock to exactly limit. It is RunUntil with an exclusive bound — the
// per-shard inner loop of the conservative parallel scheduler, which must
// not execute an event at the window horizon because a cross-shard message
// could still be delivered there at the barrier.
func (e *Env) runWindow(limit Time, inclusive bool) {
	for !e.closed {
		at, ok := e.nextAt()
		if !ok || at > limit || (!inclusive && at >= limit) {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// ExecutedEvents returns how many events this environment has dispatched —
// the throughput numerator for events/s comparisons. It is deterministic:
// equal seeds execute equal event counts regardless of how the run is
// windowed or sharded.
func (e *Env) ExecutedEvents() uint64 { return e.executed }

// Idle reports whether no live events remain.
func (e *Env) Idle() bool { return e.PendingEvents() == 0 }

// PendingEvents returns the number of live scheduled events; stopped timers
// awaiting lazy reclamation are not counted.
func (e *Env) PendingEvents() int {
	return len(e.heap) + (len(e.fifo) - e.fifoHead) - e.dead
}

// Close aborts every live process so their goroutines exit, and discards all
// pending events. Events are discarded before the processes unwind so stale
// resume entries cannot pin aborted processes, and once more afterwards to
// drop any wakeups scheduled by unwinding defers. The environment is
// unusable afterwards. Close is the cleanup counterpart of NewEnv and is
// safe to call multiple times.
func (e *Env) Close() {
	if e.closed {
		return
	}
	if e.current != nil {
		panic("sim: Close called from process context")
	}
	e.closed = true
	e.discardEvents()
	for p := range e.procs {
		if p.state == procDone {
			continue
		}
		e.resume(p, resumeAbort)
	}
	e.procs = map[*Proc]struct{}{}
	e.discardEvents()
	hooks := e.closeHooks
	e.closeHooks = nil
	for _, fn := range hooks {
		fn()
	}
}

// OnClose registers fn to run at the end of Close, after every process has
// unwound and the event queues are discarded. Hooks run in registration
// order, once; registering on a closed environment runs fn immediately.
// Subsystems that pin external slots from process context (the DMA fence
// table's alloc-before-signal chunk fences) use this to release them when
// the simulation is torn down mid-flight.
func (e *Env) OnClose(fn func()) {
	if fn == nil {
		panic("sim: OnClose with nil hook")
	}
	if e.closed {
		fn()
		return
	}
	e.closeHooks = append(e.closeHooks, fn)
}

func (e *Env) discardEvents() {
	e.heap = nil
	e.fifo = nil
	e.fifoHead = 0
	e.dead = 0
	e.timerFree = nil
	e.waiterFree = nil
}

// resume hands control to p and blocks until p parks again or terminates.
func (e *Env) resume(p *Proc, k resumeKind) {
	if p.state == procDone {
		return // stale timer for a finished process
	}
	prev := e.current
	e.current = p
	p.resume <- k
	<-e.sched
	e.current = prev
}

// currentProc returns the process executing right now, panicking when called
// from scheduler context where no process is live.
func (e *Env) currentProc() *Proc {
	if e.current == nil {
		panic("sim: blocking primitive used outside process context")
	}
	return e.current
}

func (e *Env) String() string {
	return fmt.Sprintf("sim.Env{now: %v, events: %d, procs: %d}",
		e.now, e.PendingEvents(), len(e.procs))
}
