package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point on the simulation's virtual clock, expressed as the
// duration elapsed since the simulation started.
type Time = time.Duration

// event is a scheduled occurrence: either the resumption of a parked process
// or a plain callback executed in scheduler context.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	proc *Proc  // non-nil: resume this process
	fn   func() // non-nil: run this callback in scheduler context
	idx  int    // heap index
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Env is a simulation environment: a virtual clock, an event queue, and the
// set of live processes. An Env is not safe for concurrent use; all calls
// must come either from process context or from the single goroutine driving
// Run/RunUntil/Step.
type Env struct {
	now     Time
	events  eventHeap
	seq     uint64
	procs   map[*Proc]struct{}
	rng     *rand.Rand
	sched   chan struct{} // process -> scheduler rendezvous
	current *Proc         // process currently executing, if any
	closed  bool
}

// NewEnv returns a fresh environment whose clock reads zero. The seed fixes
// the environment's random stream; equal seeds give bit-identical runs.
func NewEnv(seed int64) *Env {
	return &Env{
		procs: make(map[*Proc]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
		sched: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random stream.
func (e *Env) Rand() *rand.Rand { return e.rng }

// schedule inserts an event at absolute time at (clamped to now).
func (e *Env) schedule(at Time, p *Proc, fn func()) *event {
	if at < e.now {
		at = e.now
	}
	ev := &event{at: at, seq: e.seq, proc: p, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run in scheduler context d from now. It may be called
// from process context or from outside the simulation.
func (e *Env) After(d Time, fn func()) {
	if fn == nil {
		panic("sim: After with nil callback")
	}
	e.schedule(e.now+d, nil, fn)
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Env) Step() bool {
	if e.closed || len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	switch {
	case ev.proc != nil:
		e.resume(ev.proc, resumeOK)
	case ev.fn != nil:
		ev.fn()
	}
	return true
}

// Run executes events until none remain. Simulations with immortal daemon
// processes (clocks, pollers) never drain; use RunUntil for those.
func (e *Env) Run() {
	for e.Step() {
	}
}

// RunUntil executes every event scheduled at or before t, then advances the
// clock to exactly t.
func (e *Env) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t && !e.closed {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current instant.
func (e *Env) RunFor(d Time) { e.RunUntil(e.now + d) }

// Idle reports whether no events remain.
func (e *Env) Idle() bool { return len(e.events) == 0 }

// PendingEvents returns the number of scheduled events (for tests).
func (e *Env) PendingEvents() int { return len(e.events) }

// Close aborts every live process so their goroutines exit, and discards all
// pending events. The environment is unusable afterwards. Close is the
// cleanup counterpart of NewEnv and is safe to call multiple times.
func (e *Env) Close() {
	if e.closed {
		return
	}
	if e.current != nil {
		panic("sim: Close called from process context")
	}
	e.closed = true
	for p := range e.procs {
		if p.state == procDone {
			continue
		}
		e.resume(p, resumeAbort)
	}
	e.procs = map[*Proc]struct{}{}
	e.events = nil
}

// resume hands control to p and blocks until p parks again or terminates.
func (e *Env) resume(p *Proc, k resumeKind) {
	if p.state == procDone {
		return // stale timer for a finished process
	}
	prev := e.current
	e.current = p
	p.resume <- k
	<-e.sched
	e.current = prev
}

// currentProc returns the process executing right now, panicking when called
// from scheduler context where no process is live.
func (e *Env) currentProc() *Proc {
	if e.current == nil {
		panic("sim: blocking primitive used outside process context")
	}
	return e.current
}

func (e *Env) String() string {
	return fmt.Sprintf("sim.Env{now: %v, events: %d, procs: %d}", e.now, len(e.events), len(e.procs))
}
