package sim

import (
	"reflect"
	"testing"
	"time"
)

// chatter schedules a self-perpetuating random event chain on e and returns
// a log that each firing appends (time, draw) to — a workload whose exact
// trajectory depends on the env's random stream, so any perturbation of the
// event order shows up in the log.
func chatter(e *Env, until Time) *[]Time {
	log := &[]Time{}
	var tick func()
	tick = func() {
		d := Time(e.Rand().Intn(900)+100) * time.Microsecond
		*log = append(*log, e.Now(), d)
		if e.Now() < until {
			e.After(d, tick)
		}
	}
	e.After(time.Millisecond, tick)
	return log
}

// TestRunUntilEveryMatchesRunUntil pins the RunUntilEvery contract: the
// executed event stream is identical to a plain RunUntil to the same
// instant, with the hook observing at every absolute multiple of the
// period along the way.
func TestRunUntilEveryMatchesRunUntil(t *testing.T) {
	const stop = 20 * time.Millisecond
	const every = 700 * time.Microsecond // deliberately not a divisor of stop

	plain := NewEnv(42)
	plainLog := chatter(plain, 15*time.Millisecond)
	plain.RunUntil(stop)

	hooked := NewEnv(42)
	hookedLog := chatter(hooked, 15*time.Millisecond)
	var seals []Time
	hooked.RunUntilEvery(stop, every, func(now Time) { seals = append(seals, now) })

	if plain.Now() != stop || hooked.Now() != stop {
		t.Fatalf("clocks %v/%v, want both at %v", plain.Now(), hooked.Now(), stop)
	}
	if !reflect.DeepEqual(*plainLog, *hookedLog) {
		t.Fatalf("hooked run diverged from plain run: %d vs %d log entries",
			len(*hookedLog), len(*plainLog))
	}
	// Hook instants: every absolute multiple of `every` in (0, stop].
	want := []Time{}
	for at := every; at <= stop; at += every {
		want = append(want, at)
	}
	if !reflect.DeepEqual(seals, want) {
		t.Fatalf("hook instants %v, want multiples of %v up to %v", seals, every, stop)
	}
}

// TestRunUntilEveryDegenerateArgs pins the fallbacks: a zero period or nil
// hook degrades to plain RunUntil, and a hook period beyond the horizon
// never fires.
func TestRunUntilEveryDegenerateArgs(t *testing.T) {
	e := NewEnv(1)
	e.RunUntilEvery(time.Millisecond, 0, func(now Time) { t.Fatal("hook fired for zero period") })
	e.RunUntilEvery(2*time.Millisecond, 500*time.Microsecond, nil)
	if e.Now() != 2*time.Millisecond {
		t.Fatalf("clock %v, want 2ms", e.Now())
	}
	fired := 0
	e.RunUntilEvery(3*time.Millisecond, 10*time.Millisecond, func(now Time) { fired++ })
	if fired != 0 || e.Now() != 3*time.Millisecond {
		t.Fatalf("hook fired %d times past the horizon (clock %v)", fired, e.Now())
	}
}
