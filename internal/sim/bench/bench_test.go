// Package bench microbenchmarks the sim scheduler core in isolation:
// steady-state event throughput at several queue depths, the same-instant
// zero-delay path, and timer cancellation churn. Every benchmark reports
// events/s and allocs/op; the scheduler's contract is ~0 allocs/op once the
// queues reach steady state.
//
// Run with:
//
//	go test -bench=. -benchmem ./internal/sim/bench
package bench_test

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// steadyState keeps `depth` self-rescheduling timers outstanding with
// staggered periods, so every Step pops one event and pushes one — the hot
// loop of every hostsim device model.
func steadyState(b *testing.B, depth int) {
	env := sim.NewEnv(1)
	defer env.Close()
	for i := 0; i < depth; i++ {
		d := time.Microsecond * time.Duration(1+i%97)
		var fn func()
		fn = func() { env.After(d, fn) }
		env.After(d, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkSteadyState16(b *testing.B)   { steadyState(b, 16) }
func BenchmarkSteadyState256(b *testing.B)  { steadyState(b, 256) }
func BenchmarkSteadyState4096(b *testing.B) { steadyState(b, 4096) }

// BenchmarkZeroDelay measures the same-instant path: a zero-delay callback
// rescheduling itself never advances the clock, the pattern behind Yield and
// signal-at-now wakeups.
func BenchmarkZeroDelay(b *testing.B) {
	env := sim.NewEnv(1)
	defer env.Close()
	var fn func()
	fn = func() { env.After(0, fn) }
	env.After(0, fn)
	// A far-future event keeps the heap non-trivial so the fast path is
	// measured against a populated queue.
	env.After(time.Hour, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTimerStop measures the schedule/stop cycle of cancellable
// timeouts — the guard-timer pattern of Event.WaitTimeout, where almost
// every timer is cancelled before it fires.
func BenchmarkTimerStop(b *testing.B) {
	env := sim.NewEnv(1)
	defer env.Close()
	tick := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := env.AfterFunc(time.Millisecond, tick)
		t.Stop()
		env.RunFor(time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkWaitTimeoutSignaled measures the fired path of WaitTimeout: the
// event signals in time, the guard timer is stopped, and neither side may
// leak queue entries.
func BenchmarkWaitTimeoutSignaled(b *testing.B) {
	env := sim.NewEnv(1)
	defer env.Close()
	n := b.N
	evs := make(chan *sim.Event, 1)
	env.Spawn("waiter", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			ev := sim.NewEvent(env)
			evs <- ev
			if !ev.WaitTimeout(p, time.Second) {
				b.Error("unexpected timeout")
				return
			}
		}
	})
	env.Spawn("signaler", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(time.Microsecond)
			(<-evs).Signal()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for env.Step() {
	}
	b.StopTimer()
	if got := env.PendingEvents(); got != 0 {
		b.Fatalf("PendingEvents = %d after drain, want 0 (leaked timers?)", got)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "waits/s")
}
