package sim

import (
	"testing"
	"time"
)

// BenchmarkTimerEvents measures raw scheduler throughput: schedule-and-run
// of callback events.
func BenchmarkTimerEvents(b *testing.B) {
	env := NewEnv(1)
	defer env.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.After(time.Microsecond, func() {})
		env.Step()
	}
}

// BenchmarkProcessSwitch measures the park/resume rendezvous cost of the
// coroutine machinery.
func BenchmarkProcessSwitch(b *testing.B) {
	env := NewEnv(1)
	defer env.Close()
	done := false
	env.Spawn("spinner", func(p *Proc) {
		for !done {
			p.Sleep(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Step()
	}
	b.StopTimer()
	done = true
	env.RunFor(time.Millisecond)
}

// BenchmarkQueueHandoff measures producer/consumer handoff through a Queue.
func BenchmarkQueueHandoff(b *testing.B) {
	env := NewEnv(1)
	defer env.Close()
	q := NewQueue[int](env, 0)
	n := b.N
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < n; i++ {
			q.Put(p, i)
			p.Yield()
		}
	})
	consumed := 0
	env.Spawn("consumer", func(p *Proc) {
		for consumed < n {
			q.Get(p)
			consumed++
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for consumed < n && env.Step() {
	}
}

// BenchmarkSemaphoreContention measures FIFO grant cost under contention.
func BenchmarkSemaphoreContention(b *testing.B) {
	env := NewEnv(1)
	defer env.Close()
	s := NewSemaphore(env, 2)
	n := b.N
	for w := 0; w < 4; w++ {
		env.Spawn("worker", func(p *Proc) {
			for i := 0; i < n/4+1; i++ {
				s.Acquire(p, 1)
				p.Sleep(time.Nanosecond)
				s.Release(1)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !env.Step() {
			break
		}
	}
}
