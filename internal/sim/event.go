package sim

// waiter records one parked process awaiting a wakeup. The woke flag ensures
// a process receives at most one resume per registration even when several
// wake sources race at the same instant (e.g. a signal and a timeout).
type waiter struct {
	p        *Proc
	woke     bool
	timedOut bool
}

// Event is a one-shot broadcast: processes wait until some party signals,
// after which all current and future waits return immediately. Value may be
// set by the signaler before Signal to pass a result to waiters.
type Event struct {
	env     *Env
	fired   bool
	Value   any
	waiters []*waiter
}

// NewEvent returns an unfired event bound to env.
func NewEvent(env *Env) *Event { return &Event{env: env} }

// Fired reports whether the event has been signaled.
func (ev *Event) Fired() bool { return ev.fired }

// Signal fires the event, waking every waiter at the current instant.
// Signaling an already-fired event is a no-op. Signal may be called from
// process or scheduler context.
func (ev *Event) Signal() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, w := range ev.waiters {
		if !w.woke {
			w.woke = true
			ev.env.schedule(ev.env.now, w.p, nil)
		}
	}
	ev.waiters = nil
}

// Wait blocks p until the event fires. Returns immediately if already fired.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	w := &waiter{p: p}
	ev.waiters = append(ev.waiters, w)
	p.park()
}

// WaitTimeout blocks p until the event fires or d elapses. It reports true
// when the event fired, false on timeout.
func (ev *Event) WaitTimeout(p *Proc, d Time) bool {
	if ev.fired {
		return true
	}
	w := &waiter{p: p}
	ev.waiters = append(ev.waiters, w)
	ev.env.After(d, func() {
		if !w.woke {
			w.woke = true
			w.timedOut = true
			ev.env.schedule(ev.env.now, w.p, nil)
		}
	})
	p.park()
	return !w.timedOut
}
