package sim

// waiter records one parked process awaiting a wakeup. The woke flag ensures
// a process receives at most one resume per registration even when several
// wake sources race at the same instant (e.g. a signal and a timeout).
// Waiters are recycled through the Env's free list once their registration
// is provably unreferenced.
type waiter struct {
	p        *Proc
	woke     bool
	timedOut bool
	next     *waiter // free-list link
}

// Event is a one-shot broadcast: processes wait until some party signals,
// after which all current and future waits return immediately. Value may be
// set by the signaler before Signal to pass a result to waiters.
type Event struct {
	env     *Env
	fired   bool
	Value   any
	waiters []*waiter
}

// NewEvent returns an unfired event bound to env.
func NewEvent(env *Env) *Event { return &Event{env: env} }

// Fired reports whether the event has been signaled.
func (ev *Event) Fired() bool { return ev.fired }

// Signal fires the event, waking every waiter at the current instant.
// Signaling an already-fired event is a no-op. Signal may be called from
// process or scheduler context.
func (ev *Event) Signal() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, w := range ev.waiters {
		if !w.woke {
			w.woke = true
			ev.env.schedule(ev.env.now, w.p, nil)
		}
	}
	ev.waiters = nil
}

// removeWaiter drops one registration, preserving the FIFO order of the
// rest.
func (ev *Event) removeWaiter(w *waiter) {
	for i, x := range ev.waiters {
		if x == w {
			ev.waiters = append(ev.waiters[:i], ev.waiters[i+1:]...)
			return
		}
	}
}

// Wait blocks p until the event fires. Returns immediately if already fired.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	w := ev.env.getWaiter(p)
	ev.waiters = append(ev.waiters, w)
	p.park()
	ev.env.putWaiter(w)
}

// WaitTimeout blocks p until the event fires or d elapses. It reports true
// when the event fired, false on timeout. Whichever path loses is torn down
// eagerly: a fired event stops its timeout timer, and a timeout removes the
// waiter from the event's list, so neither outcome leaves the other
// registration pinning memory or inflating PendingEvents.
func (ev *Event) WaitTimeout(p *Proc, d Time) bool {
	if ev.fired {
		return true
	}
	w := ev.env.getWaiter(p)
	ev.waiters = append(ev.waiters, w)
	t := ev.env.AfterFunc(d, func() {
		if !w.woke {
			w.woke = true
			w.timedOut = true
			ev.removeWaiter(w)
			ev.env.schedule(ev.env.now, w.p, nil)
		}
	})
	p.park()
	timedOut := w.timedOut
	if !timedOut {
		t.Stop()
	}
	// The timer either fired or was stopped, so its closure — the only
	// other reference to w — is gone and the registration can be recycled.
	ev.env.putWaiter(w)
	return !timedOut
}
