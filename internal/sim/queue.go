package sim

// Queue is a FIFO channel between processes. A zero capacity means
// unbounded; otherwise Put blocks while the queue is full. Wakeups are FIFO
// so contention resolves deterministically.
type Queue[T any] struct {
	env        *Env
	items      []T
	cap        int
	getWaiters []*waiter
	putWaiters []*waiter
}

// NewQueue returns a queue bound to env. capacity <= 0 means unbounded.
func NewQueue[T any](env *Env, capacity int) *Queue[T] {
	return &Queue[T]{env: env, cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

func (q *Queue[T]) wakeOne(ws *[]*waiter) {
	for i, w := range *ws {
		if !w.woke {
			w.woke = true
			q.env.schedule(q.env.now, w.p, nil)
			*ws = (*ws)[i+1:]
			return
		}
	}
	*ws = nil
}

// Put appends v, blocking while a bounded queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.cap > 0 && len(q.items) >= q.cap {
		w := q.env.getWaiter(p)
		q.putWaiters = append(q.putWaiters, w)
		p.park()
		q.env.putWaiter(w) // woken waiters have left the wait list
	}
	q.items = append(q.items, v)
	q.wakeOne(&q.getWaiters)
}

// TryPut appends v without blocking, reporting whether it fit.
func (q *Queue[T]) TryPut(v T) bool {
	if q.cap > 0 && len(q.items) >= q.cap {
		return false
	}
	q.items = append(q.items, v)
	q.wakeOne(&q.getWaiters)
	return true
}

// Get removes and returns the head item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		w := q.env.getWaiter(p)
		q.getWaiters = append(q.getWaiters, w)
		p.park()
		q.env.putWaiter(w) // woken waiters have left the wait list
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.wakeOne(&q.putWaiters)
	return v
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.wakeOne(&q.putWaiters)
	return v, true
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0], true
}
