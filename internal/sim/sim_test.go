package sim

import (
	"testing"
	"time"
)

const ms = time.Millisecond

func TestClockStartsAtZero(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	if env.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", env.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	var woke Time
	env.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * ms)
		woke = p.Now()
	})
	env.Run()
	if woke != 5*ms {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
}

func TestSequentialSleeps(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	var times []Time
	env.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(2 * ms)
			times = append(times, p.Now())
		}
	})
	env.Run()
	want := []Time{2 * ms, 4 * ms, 6 * ms}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("sleep %d woke at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestFIFOOrderAtSameInstant(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Spawn("p", func(p *Proc) {
			p.Sleep(1 * ms)
			order = append(order, i)
		})
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending spawn order", order)
		}
	}
}

func TestAfterCallback(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	var at Time = -1
	env.After(7*ms, func() { at = env.Now() })
	env.Run()
	if at != 7*ms {
		t.Fatalf("callback at %v, want 7ms", at)
	}
}

func TestRunUntilStopsAndAdvances(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	fired := 0
	env.After(3*ms, func() { fired++ })
	env.After(10*ms, func() { fired++ })
	env.RunUntil(5 * ms)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if env.Now() != 5*ms {
		t.Fatalf("Now() = %v, want 5ms", env.Now())
	}
	env.RunUntil(20 * ms)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestEventBroadcastWakesAllWaiters(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	ev := NewEvent(env)
	woke := make([]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn("waiter", func(p *Proc) {
			ev.Wait(p)
			woke[i] = p.Now()
		})
	}
	env.Spawn("signaler", func(p *Proc) {
		p.Sleep(4 * ms)
		ev.Value = "done"
		ev.Signal()
	})
	env.Run()
	for i, w := range woke {
		if w != 4*ms {
			t.Errorf("waiter %d woke at %v, want 4ms", i, w)
		}
	}
	if ev.Value != "done" {
		t.Errorf("Value = %v, want done", ev.Value)
	}
}

func TestEventWaitAfterFiredReturnsImmediately(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	ev := NewEvent(env)
	ev.Signal()
	var woke Time = -1
	env.Spawn("late", func(p *Proc) {
		p.Sleep(2 * ms)
		ev.Wait(p)
		woke = p.Now()
	})
	env.Run()
	if woke != 2*ms {
		t.Fatalf("woke at %v, want 2ms (no extra delay)", woke)
	}
}

func TestEventDoubleSignalIsNoop(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	ev := NewEvent(env)
	ev.Signal()
	ev.Signal()
	if !ev.Fired() {
		t.Fatal("event should be fired")
	}
}

func TestEventWaitTimeoutFires(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	ev := NewEvent(env)
	var ok bool
	var at Time
	env.Spawn("w", func(p *Proc) {
		ok = ev.WaitTimeout(p, 3*ms)
		at = p.Now()
	})
	env.Run()
	if ok {
		t.Fatal("WaitTimeout = true, want timeout")
	}
	if at != 3*ms {
		t.Fatalf("timed out at %v, want 3ms", at)
	}
}

func TestEventWaitTimeoutSignaledFirst(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	ev := NewEvent(env)
	var ok bool
	var at Time
	env.Spawn("w", func(p *Proc) {
		ok = ev.WaitTimeout(p, 10*ms)
		at = p.Now()
	})
	env.Spawn("s", func(p *Proc) {
		p.Sleep(2 * ms)
		ev.Signal()
	})
	env.RunUntil(20 * ms)
	if !ok {
		t.Fatal("WaitTimeout = false, want signaled")
	}
	if at != 2*ms {
		t.Fatalf("woke at %v, want 2ms", at)
	}
}

func TestQueueFIFO(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	q := NewQueue[int](env, 0)
	var got []int
	env.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(1 * ms)
			q.Put(p, i)
		}
	})
	env.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v, want [0 1 2]", got)
		}
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	q := NewQueue[string](env, 0)
	var at Time
	env.Spawn("consumer", func(p *Proc) {
		q.Get(p)
		at = p.Now()
	})
	env.Spawn("producer", func(p *Proc) {
		p.Sleep(6 * ms)
		q.Put(p, "x")
	})
	env.Run()
	if at != 6*ms {
		t.Fatalf("consumer woke at %v, want 6ms", at)
	}
}

func TestQueueBoundedPutBlocks(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	q := NewQueue[int](env, 2)
	var secondPutAt Time
	env.Spawn("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // blocks until consumer drains one
		secondPutAt = p.Now()
	})
	env.Spawn("consumer", func(p *Proc) {
		p.Sleep(5 * ms)
		q.Get(p)
	})
	env.Run()
	if secondPutAt != 5*ms {
		t.Fatalf("blocked Put completed at %v, want 5ms", secondPutAt)
	}
}

func TestQueueTryGetTryPut(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	q := NewQueue[int](env, 1)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue should fail")
	}
	if !q.TryPut(42) {
		t.Fatal("TryPut on empty bounded queue should succeed")
	}
	if q.TryPut(43) {
		t.Fatal("TryPut on full queue should fail")
	}
	v, ok := q.TryGet()
	if !ok || v != 42 {
		t.Fatalf("TryGet = %d, %v; want 42, true", v, ok)
	}
}

func TestQueueMultipleConsumersFIFO(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	q := NewQueue[int](env, 0)
	var got [2]int
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("c", func(p *Proc) { got[i] = q.Get(p) })
	}
	env.Spawn("p", func(p *Proc) {
		p.Sleep(1 * ms)
		q.Put(p, 10)
		p.Sleep(1 * ms)
		q.Put(p, 20)
	})
	env.Run()
	if got[0] != 10 || got[1] != 20 {
		t.Fatalf("got = %v, want first consumer gets first item", got)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	s := NewSemaphore(env, 2)
	active, peak := 0, 0
	for i := 0; i < 5; i++ {
		env.Spawn("worker", func(p *Proc) {
			s.Acquire(p, 1)
			active++
			if active > peak {
				peak = active
			}
			p.Sleep(10 * ms)
			active--
			s.Release(1)
		})
	}
	env.Run()
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if s.Available() != 2 {
		t.Fatalf("available = %d after drain, want 2", s.Available())
	}
}

func TestSemaphoreFIFOGrant(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	s := NewSemaphore(env, 1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn("w", func(p *Proc) {
			p.Sleep(Time(i) * ms) // arrive in order 0,1,2
			s.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(10 * ms)
			s.Release(1)
		})
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
}

func TestSemaphoreTryAcquireRespectsWaiters(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	s := NewSemaphore(env, 2)
	env.Spawn("holder", func(p *Proc) {
		s.Acquire(p, 2)
		p.Sleep(10 * ms)
		s.Release(2)
	})
	env.Spawn("waiter", func(p *Proc) {
		p.Sleep(1 * ms)
		s.Acquire(p, 2)
		s.Release(2)
	})
	env.Spawn("opportunist", func(p *Proc) {
		p.Sleep(5 * ms)
		if s.TryAcquire(1) {
			t.Error("TryAcquire succeeded while earlier waiter queued")
		}
	})
	env.Run()
}

func TestMutexExclusion(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	m := NewMutex(env)
	inside := false
	for i := 0; i < 3; i++ {
		env.Spawn("w", func(p *Proc) {
			m.Lock(p)
			if inside {
				t.Error("two processes inside critical section")
			}
			inside = true
			p.Sleep(2 * ms)
			inside = false
			m.Unlock()
		})
	}
	env.Run()
	if m.Locked() {
		t.Fatal("mutex still locked after drain")
	}
}

func TestSemaphoreHold(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	s := NewSemaphore(env, 1)
	var done Time
	env.Spawn("a", func(p *Proc) { s.Hold(p, 1, 4*ms) })
	env.Spawn("b", func(p *Proc) {
		s.Hold(p, 1, 4*ms)
		done = p.Now()
	})
	env.Run()
	if done != 8*ms {
		t.Fatalf("second hold finished at %v, want 8ms (serialized)", done)
	}
}

func TestCloseAbortsBlockedProcesses(t *testing.T) {
	env := NewEnv(1)
	ev := NewEvent(env)
	ran := false
	env.Spawn("stuck", func(p *Proc) {
		ev.Wait(p) // never signaled
		ran = true
	})
	env.RunUntil(1 * ms)
	env.Close()
	if ran {
		t.Fatal("aborted process ran past its block point")
	}
	// Double close is safe.
	env.Close()
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		env := NewEnv(42)
		defer env.Close()
		var stamps []Time
		q := NewQueue[int](env, 0)
		for i := 0; i < 4; i++ {
			env.Spawn("prod", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Sleep(Time(env.Rand().Intn(5)+1) * ms)
					q.Put(p, j)
				}
			})
		}
		env.Spawn("cons", func(p *Proc) {
			for j := 0; j < 40; j++ {
				q.Get(p)
				stamps = append(stamps, p.Now())
			}
		})
		env.Run()
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stamp %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSpawnAt(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	var started Time = -1
	env.SpawnAt(9*ms, "late", func(p *Proc) { started = p.Now() })
	env.Run()
	if started != 9*ms {
		t.Fatalf("started at %v, want 9ms", started)
	}
}

func TestYieldOrdersWithinInstant(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	var order []string
	env.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	env.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	env.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunForAndIdle(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	fired := false
	env.After(4*ms, func() { fired = true })
	if env.Idle() {
		t.Fatal("should have a pending event")
	}
	if env.PendingEvents() != 1 {
		t.Fatalf("PendingEvents = %d, want 1", env.PendingEvents())
	}
	env.RunFor(2 * ms)
	if fired || env.Now() != 2*ms {
		t.Fatalf("fired=%v now=%v after RunFor(2ms)", fired, env.Now())
	}
	env.RunFor(2 * ms)
	if !fired || !env.Idle() {
		t.Fatalf("fired=%v idle=%v, want fired and drained", fired, env.Idle())
	}
}

func TestAfterNilCallbackPanics(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for nil callback")
		}
	}()
	env.After(ms, nil)
}

func TestBlockingOutsideProcessPanics(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	s := NewSemaphore(env, 1)
	s.Acquire(nil, 1) // fast path needs no proc
	defer func() {
		if recover() == nil {
			t.Fatal("want panic when a primitive must park outside process context")
		}
	}()
	// Second acquire must park, which requires process context.
	s.Acquire(nil, 1)
}

func TestProcAccessors(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	env.Spawn("named", func(p *Proc) {
		if p.Name() != "named" || p.Env() != env || p.String() == "" {
			t.Error("proc accessors wrong")
		}
		if p.Now() != env.Now() {
			t.Error("Now mismatch")
		}
	})
	env.Run()
	if env.String() == "" {
		t.Fatal("env stringer empty")
	}
}

func TestQueueLenAndPeek(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	q := NewQueue[string](env, 0)
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty should miss")
	}
	q.TryPut("a")
	q.TryPut("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	v, ok := q.Peek()
	if !ok || v != "a" {
		t.Fatalf("Peek = %q/%v, want a/true", v, ok)
	}
	if q.Len() != 2 {
		t.Fatal("Peek must not consume")
	}
}

func TestSemaphoreAccessors(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	s := NewSemaphore(env, 3)
	if s.Capacity() != 3 || s.Available() != 3 || s.InUse() != 0 {
		t.Fatal("fresh semaphore accounting wrong")
	}
	if !s.TryAcquire(2) {
		t.Fatal("TryAcquire should succeed")
	}
	if s.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", s.InUse())
	}
	if s.TryAcquire(2) {
		t.Fatal("over-acquire should fail")
	}
	s.Release(2)
}

func TestSemaphoreInvalidCapacityPanics(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewSemaphore(env, 0)
}

func TestSemaphoreOverReleasePanics(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	s := NewSemaphore(env, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s.Release(1)
}

func TestAcquireBeyondCapacityPanics(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	s := NewSemaphore(env, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s.Acquire(nil, 2)
}
