package sim

import (
	"fmt"
	"sort"
	"time"
)

// This file implements the conservative parallel scheduler (DESIGN.md §12):
// a ShardGroup partitions independent environments (one per guest instance)
// into shards, each advancing through its own PR 1 event queue, synchronized
// only at window barriers. The window horizon is derived from the group's
// lookahead — the minimum cross-shard latency (link service floors, VM-exit
// cost), below which no shard can affect another — so within a window the
// shards are causally independent and can run on separate cores.
//
// Determinism contract: output is byte-identical at every shard count. The
// window sequence depends only on the global earliest event time (not on the
// partition), each environment's execution inside a window is purely local,
// and cross-shard mail is delivered at barriers in a total order — by
// (delivery time, sending environment index, send order) — before any
// target event at the same instant is created, so sequence numbers land
// identically however the envs were sharded.

// mail is one cross-shard message: fn runs in the target environment's
// scheduler context at time at. bytes is observability payload only — it
// never shapes delivery.
type mail struct {
	at    Time
	to    int
	bytes int64
	fn    func()
}

// ShardLoad is one shard's share of a window: virtual events executed and
// the wall-clock time its goroutine spent executing them. Events is
// deterministic; Compute is a host measurement and must never feed back
// into the simulation.
type ShardLoad struct {
	Events  uint64
	Compute time.Duration
}

// ShardWindowStats describes one executed window for an observer. The
// struct is reused across windows — observers must copy anything they keep.
// Base/Limit/Lookahead/Final/Mails/MailBytes and every Shards[i].Events are
// deterministic (identical at every shard count for equal seeds); the Wall*
// fields and Shards[i].Compute are wall-clock measurements for stall
// attribution only.
type ShardWindowStats struct {
	Base      Time // global earliest event time the window opened at
	Limit     Time // window horizon actually executed to
	Lookahead Time // configured conservative horizon
	Final     bool // closed inclusively at the run bound

	Mails     int   // cross-shard messages delivered at this barrier
	MailBytes int64 // observability payload bytes across those messages

	WallScan time.Duration // coordinator: global min-scan + window setup
	WallExec time.Duration // coordinator: dispatch through last shard parked
	WallArb  time.Duration // coordinator: mail delivery + barrier hooks

	Shards []ShardLoad // per-shard load, indexed by shard
}

// ShardObserver receives one callback per executed window, on the
// coordinating goroutine, after mail delivery and barrier hooks. Observers
// must not mutate the group or its environments.
type ShardObserver interface {
	ShardWindow(w *ShardWindowStats)
}

// windowReq asks a worker to advance its shard's environments to limit
// (inclusive of events at the horizon only for the final window of a
// bounded run, mirroring RunUntil's closed bound).
type windowReq struct {
	limit Time
	final bool
}

// ShardGroup runs a set of independent environments under the conservative
// windowed protocol. Construct with NewShardGroup, drive with RunUntil, and
// Close when done (Close stops the worker goroutines, not the
// environments). The group itself must be driven from a single goroutine.
type ShardGroup struct {
	envs      []*Env
	shards    [][]*Env
	lookahead Time
	now       Time

	hooks []func(prev, now Time)

	// outbox[i] is written only by the goroutine running envs[i]'s shard
	// during a window; the coordinator drains every outbox at the barrier
	// (after all workers parked, so no data race).
	outbox [][]mail

	start  []chan windowReq // one per extra worker (shards beyond the first)
	done   chan struct{}
	closed bool

	// obs, when non-nil, receives per-window scheduler telemetry. stats is
	// the reused callback argument; workers write only their own
	// stats.Shards slot during a window and the coordinator reads at the
	// barrier (the channel handshake orders both), so instrumentation is
	// race-free and the disabled path stays zero-alloc.
	obs   ShardObserver
	stats ShardWindowStats
}

// NewShardGroup partitions envs round-robin into at most shards shards.
// lookahead must be positive: it is the conservative window size, and the
// minimum cross-shard Send delay. One shard degenerates to a serial loop
// with no worker goroutines; shard counts above len(envs) are clamped.
func NewShardGroup(lookahead Time, shards int, envs ...*Env) *ShardGroup {
	if lookahead <= 0 {
		panic("sim: shard lookahead must be positive")
	}
	if shards < 1 {
		panic("sim: shard count must be >= 1")
	}
	if len(envs) == 0 {
		panic("sim: shard group needs at least one environment")
	}
	seen := make(map[*Env]struct{}, len(envs))
	for _, e := range envs {
		if e == nil {
			panic("sim: nil environment in shard group")
		}
		if _, dup := seen[e]; dup {
			panic("sim: duplicate environment in shard group")
		}
		seen[e] = struct{}{}
	}
	if shards > len(envs) {
		shards = len(envs)
	}
	g := &ShardGroup{
		envs:      envs,
		shards:    make([][]*Env, shards),
		lookahead: lookahead,
		outbox:    make([][]mail, len(envs)),
	}
	for i, e := range envs {
		s := i % shards
		g.shards[s] = append(g.shards[s], e)
	}
	if shards > 1 {
		g.done = make(chan struct{}, shards-1)
		for s := 1; s < shards; s++ {
			ch := make(chan windowReq)
			g.start = append(g.start, ch)
			go g.worker(s, g.shards[s], ch)
		}
	}
	return g
}

// SetObserver installs (or, with nil, removes) the per-window observer.
// Call before RunUntil; the observer is read by worker goroutines during a
// run, so installing one mid-run is a race.
func (g *ShardGroup) SetObserver(o ShardObserver) {
	g.obs = o
	if o != nil && len(g.stats.Shards) != len(g.shards) {
		g.stats.Shards = make([]ShardLoad, len(g.shards))
	}
}

// worker advances one shard's environments window by window. Each
// environment runs sequentially within the shard; the parallelism is across
// shards. The channel handshake gives the coordinator a happens-before edge
// around every window, so barrier-time reads of env state are race-free.
func (g *ShardGroup) worker(s int, envs []*Env, start <-chan windowReq) {
	for req := range start {
		g.runShardWindow(s, envs, req.limit, req.final)
		g.done <- struct{}{}
	}
}

// runShardWindow advances one shard's environments through a window,
// recording the shard's load when an observer is installed. The fast path
// (no observer) is branch-only: no timing, no allocation.
func (g *ShardGroup) runShardWindow(s int, envs []*Env, limit Time, final bool) {
	if g.obs == nil {
		for _, e := range envs {
			e.runWindow(limit, final)
		}
		return
	}
	wall := time.Now()
	var before uint64
	for _, e := range envs {
		before += e.executed
	}
	for _, e := range envs {
		e.runWindow(limit, final)
	}
	var after uint64
	for _, e := range envs {
		after += e.executed
	}
	ld := &g.stats.Shards[s]
	ld.Events = after - before
	ld.Compute = time.Since(wall)
}

// Shards returns the number of shards actually running (after clamping).
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Lookahead returns the conservative window size.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// Now returns the group's barrier clock: every environment has advanced to
// at least this instant.
func (g *ShardGroup) Now() Time { return g.now }

// AtBarrier registers fn to run on the coordinating goroutine at every
// window barrier, after all shards have parked and cross-shard mail has
// been delivered. prev and now bound the window just executed. This is the
// shared-host-resource synchronization point: PCIe budget arbitration, DMA
// engine accounting, and the thermal envelope read per-env state here and
// apply their decisions to the next window. Hooks run in registration
// order.
func (g *ShardGroup) AtBarrier(fn func(prev, now Time)) {
	if fn == nil {
		panic("sim: AtBarrier with nil hook")
	}
	g.hooks = append(g.hooks, fn)
}

// Send schedules fn to run in environment to's scheduler context delay from
// environment from's current instant. It must be called from code executing
// inside environment from (its shard's goroutine owns the outbox), and
// delay must be at least the group's lookahead — a shorter delay could land
// inside the window being executed, which the conservative protocol cannot
// honor. Delivery order is deterministic regardless of sharding.
func (g *ShardGroup) Send(from, to int, delay Time, fn func()) {
	g.SendSized(from, to, delay, 0, fn)
}

// SendSized is Send with an observability payload size attached: bytes is
// reported to the group's ShardObserver as cross-shard mailbox volume but
// never shapes delivery, so it cannot perturb determinism.
func (g *ShardGroup) SendSized(from, to int, delay Time, bytes int64, fn func()) {
	if fn == nil {
		panic("sim: Send with nil callback")
	}
	if from < 0 || from >= len(g.envs) || to < 0 || to >= len(g.envs) {
		panic(fmt.Sprintf("sim: Send %d -> %d out of range", from, to))
	}
	if delay < g.lookahead {
		panic(fmt.Sprintf("sim: Send delay %v below lookahead %v", delay, g.lookahead))
	}
	g.outbox[from] = append(g.outbox[from], mail{at: g.envs[from].Now() + delay, to: to, bytes: bytes, fn: fn})
}

// nextEventAt returns the earliest pending event time across the group.
func (g *ShardGroup) nextEventAt() (Time, bool) {
	var min Time
	have := false
	for _, e := range g.envs {
		if at, ok := e.nextAt(); ok && (!have || at < min) {
			min, have = at, true
		}
	}
	return min, have
}

// runShards executes one window on every shard: the first shard on the
// coordinating goroutine, the rest on their workers.
func (g *ShardGroup) runShards(limit Time, final bool) {
	req := windowReq{limit: limit, final: final}
	for _, ch := range g.start {
		ch <- req
	}
	g.runShardWindow(0, g.shards[0], limit, final)
	for range g.start {
		<-g.done
	}
}

// deliver drains every outbox into the target environments. Messages are
// ordered by (delivery time, sending env index, send order) — the sort is
// stable over a by-sender concatenation — so event sequence numbers in the
// targets are independent of the partition. Delivery times are at or after
// the barrier instant by the Send delay floor, so pushes never land in the
// past.
func (g *ShardGroup) deliver() {
	var msgs []mail
	for i := range g.outbox {
		msgs = append(msgs, g.outbox[i]...)
		g.outbox[i] = g.outbox[i][:0]
	}
	if len(msgs) == 0 {
		return
	}
	sort.SliceStable(msgs, func(a, b int) bool { return msgs[a].at < msgs[b].at })
	for _, m := range msgs {
		g.envs[m.to].push(event{at: m.at, fn: m.fn})
	}
	if g.obs != nil {
		g.stats.Mails = len(msgs)
		for _, m := range msgs {
			g.stats.MailBytes += m.bytes
		}
	}
}

// RunUntil drives every environment to exactly t under the windowed
// protocol: repeatedly find the global earliest event time T, execute all
// events in [T, T+lookahead) shard-parallel, then synchronize — deliver
// cross-shard mail and run barrier hooks. The final window closes at t
// inclusively, matching Env.RunUntil's bound.
func (g *ShardGroup) RunUntil(t Time) {
	if g.closed {
		panic("sim: RunUntil on closed shard group")
	}
	for {
		var scanStart time.Time
		if g.obs != nil {
			scanStart = time.Now()
		}
		T, have := g.nextEventAt()
		if !have || T > t {
			// Nothing left inside the bound: advance every clock to t.
			for _, e := range g.envs {
				if e.now < t {
					e.now = t
				}
			}
			if g.now < t {
				prev := g.now
				g.now = t
				for _, h := range g.hooks {
					h(prev, t)
				}
			}
			return
		}
		limit := T + g.lookahead
		final := limit >= t
		if final {
			limit = t
		}
		var execStart time.Time
		if g.obs != nil {
			g.stats.Base, g.stats.Limit = T, limit
			g.stats.Lookahead = g.lookahead
			g.stats.Final = final
			g.stats.Mails, g.stats.MailBytes = 0, 0
			execStart = time.Now()
		}
		g.runShards(limit, final)
		var arbStart time.Time
		if g.obs != nil {
			arbStart = time.Now()
		}
		g.deliver()
		prev := g.now
		g.now = limit
		for _, h := range g.hooks {
			h(prev, limit)
		}
		if g.obs != nil {
			g.stats.WallScan = execStart.Sub(scanStart)
			g.stats.WallExec = arbStart.Sub(execStart)
			g.stats.WallArb = time.Since(arbStart)
			g.obs.ShardWindow(&g.stats)
		}
		if final {
			return
		}
	}
}

// ExecutedEvents sums the events dispatched across the group's
// environments. Deterministic for equal seeds at any shard count.
func (g *ShardGroup) ExecutedEvents() uint64 {
	var total uint64
	for _, e := range g.envs {
		total += e.executed
	}
	return total
}

// Close stops the worker goroutines. The environments themselves are not
// closed — callers own their lifecycle. Idempotent.
func (g *ShardGroup) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, ch := range g.start {
		close(ch)
	}
	g.start = nil
}
