// Arstream: run the AR workload — camera capture, in-GPU ISP conversion,
// pose tracking, heavy 3D overlay, display — and report motion-to-photon
// latency the way the paper's high-speed-camera methodology does (§5.3),
// comparing vSoC against Google Android Emulator.
package main

import (
	"fmt"
	"time"

	"repro/internal/emulator"
	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	const duration = 20 * time.Second

	fmt.Println("AR app (camera -> ISP -> tracking -> 3D render -> display)")
	fmt.Println("motion-to-photon = scene event to photon on the emulator display")
	fmt.Println()

	type row struct {
		name string
		r    *workload.Result
	}
	var rows []row
	for _, preset := range []emulator.Preset{emulator.VSoC(), emulator.GAE(), emulator.QEMUKVM()} {
		sess := workload.NewSession(preset, experiments.HighEnd.New, 11)
		spec := workload.DefaultSpec(emulator.CatAR, 0, duration)
		r, err := workload.RunEmerging(sess.Emulator, spec)
		if err != nil {
			fmt.Printf("%-10s cannot run AR: %v\n", preset.Name, err)
			sess.Close()
			continue
		}
		rows = append(rows, row{preset.Name, r})
		sess.Close()
	}

	fmt.Printf("%-10s %8s %10s %10s %10s\n", "emulator", "FPS", "m2p mean", "m2p p95", "m2p p99")
	for _, x := range rows {
		fmt.Printf("%-10s %8.1f %8.1fms %8.1fms %8.1fms\n",
			x.name, x.r.FPS, x.r.Latency.Mean(),
			x.r.Latency.Percentile(95), x.r.Latency.Percentile(99))
	}

	if len(rows) >= 2 && rows[0].name == "vSoC" {
		base := rows[0].r.Latency.Mean()
		for _, x := range rows[1:] {
			red := (x.r.Latency.Mean() - base) / x.r.Latency.Mean() * 100
			fmt.Printf("\nvSoC motion-to-photon is %.0f%% lower than %s", red, x.name)
		}
		fmt.Println()
	}

	fmt.Println("\nsub-100ms motion-to-photon is the AR comfort threshold (§1);")
	fmt.Println("only the unified SVM framework keeps the camera pipeline under it.")
}
