// Livestream: watch an RTMP-style 300 Mbps UHD stream (NIC -> codec -> GPU
// -> display, Table 1) and break down where each emulator's latency goes —
// network, decode, coherence, and display pacing.
package main

import (
	"fmt"
	"time"

	"repro/internal/emulator"
	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	const duration = 20 * time.Second

	fmt.Println("livestream viewing: 300 Mbps UHD/60 RTMP over gigabit ethernet")
	fmt.Printf("%-12s %8s %12s %10s %12s\n",
		"emulator", "FPS", "m2p mean", "decode", "coherence")

	for _, preset := range emulator.All() {
		sess := workload.NewSession(preset, experiments.HighEnd.New, 13)
		spec := workload.DefaultSpec(emulator.CatLivestream, 0, duration)
		r, err := workload.RunEmerging(sess.Emulator, spec)
		if err != nil {
			fmt.Printf("%-12s cannot run: %v\n", preset.Name, err)
			sess.Close()
			continue
		}
		st := sess.SVMStats()
		decode := sess.Emulator.DecodeCost(workload.MPixels(spec.VideoW, spec.VideoH))
		fmt.Printf("%-12s %8.1f %10.1fms %10s %10.2fms\n",
			preset.Name, r.FPS, r.Latency.Mean(),
			decode.Round(100*time.Microsecond), st.CoherenceCost.Mean())
		sess.Close()
	}

	fmt.Println("\nthe stream source is ~40 ms away; everything beyond that is the")
	fmt.Println("emulator's pipeline. vSoC's prefetch engine moves each decoded")
	fmt.Println("frame to the GPU during the inter-frame slack, so its added")
	fmt.Println("latency is decode + render + vsync alignment only.")
}
