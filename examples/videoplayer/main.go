// Videoplayer: play the paper's standard UHD 60 FPS video workload on all
// six emulator architectures and compare frame rates — a miniature Fig. 10,
// plus the per-second FPS trajectory that exposes stutter.
package main

import (
	"fmt"
	"time"

	"repro/internal/emulator"
	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	const duration = 20 * time.Second

	fmt.Println("UHD 60FPS video playback, high-end desktop, 20 simulated seconds")
	fmt.Printf("%-12s %8s %8s %8s  %s\n", "emulator", "FPS", "drops", "coh(ms)", "verdict")

	var vsocFPS float64
	for _, preset := range emulator.All() {
		sess := workload.NewSession(preset, experiments.HighEnd.New, 7)
		spec := workload.DefaultSpec(emulator.CatUHDVideo, 0, duration)
		r, err := workload.RunEmerging(sess.Emulator, spec)
		if err != nil {
			fmt.Printf("%-12s cannot run: %v\n", preset.Name, err)
			sess.Close()
			continue
		}
		st := sess.SVMStats()
		verdict := "smooth"
		switch {
		case r.FPS < 15:
			verdict = "slideshow"
		case r.FPS < 30:
			verdict = "stuttering"
		case r.FPS < 55:
			verdict = "watchable"
		}
		fmt.Printf("%-12s %8.1f %8d %8.2f  %s\n",
			preset.Name, r.FPS, r.Drops, st.CoherenceCost.Mean(), verdict)
		if preset.Name == "vSoC" {
			vsocFPS = r.FPS
		}
		sess.Close()
	}

	fmt.Println("\nwhy: coherence cost per frame vs the 16.7 ms budget (§2.4)")
	fmt.Printf("vSoC hides its ~2 ms DMA copies under the ~20 ms slack intervals;\n")
	fmt.Printf("guest-backed emulators burn 6-9 ms per crossing in the frame path.\n")

	// The ablation view: what the prefetch engine is worth on this exact
	// workload (§5.4).
	fmt.Println("\nablation on the same video:")
	for _, pf := range []func() emulator.Preset{emulator.VSoC, emulator.VSoCNoPrefetch, emulator.VSoCNoFence} {
		preset := pf()
		sess := workload.NewSession(preset, experiments.HighEnd.New, 7)
		r, err := workload.RunEmerging(sess.Emulator, workload.DefaultSpec(emulator.CatUHDVideo, 0, duration))
		if err == nil {
			delta := ""
			if vsocFPS > 0 && preset.Name != "vSoC" {
				delta = fmt.Sprintf(" (%+.0f%%)", (r.FPS/vsocFPS-1)*100)
			}
			fmt.Printf("%-16s %8.1f FPS%s\n", preset.Name, r.FPS, delta)
		}
		sess.Close()
	}
}
