// Porting: the §6 exercise — add a brand-new virtual device to vSoC and let
// it enjoy the SVM framework's prefetching and fencing without writing any
// coherence code. Here the new device is an NPU running scene-detection
// inference on camera frames.
//
// Per §6, a ported device must (1) present a handle representation of its
// memory, (2) feed its SVM usage into the twin hypergraphs, (3) attach
// prefetch and fence commands to its accesses, and (4) expose copy paths to
// other devices. The device framework does all four generically: porting is
// registering the node pair and instantiating device.New.
package main

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/emulator"
	"repro/internal/hostsim"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// Node IDs for the new device — outside the built-in ranges.
const (
	vNPU hypergraph.NodeID = 100
	pNPU hypergraph.NodeID = 100
)

func main() {
	env := sim.NewEnv(4)
	defer env.Close()
	mach := hostsim.HighEndDesktop(env)
	e := emulator.New(env, mach, emulator.VSoC())

	// Step 1-2: declare the virtual NPU and the physical engine backing
	// it (here: a dedicated block on the GPU with host-RAM staging, like
	// NVDEC). This is all the twin hypergraphs need.
	e.Manager.RegisterVirtualDevice(vNPU, "vnpu")
	e.Manager.RegisterPhysicalDevice(pNPU, "npu", mach.DRAM)

	// Step 3-4: instantiate the paravirtual device. Fences, prefetch
	// compensation, flow control, and coherence routing come with the
	// framework; ~zero device-specific SVM code, matching §6's claim that
	// minimal ports are ~150 lines in the real system.
	npu := device.New(env, e.Manager, "npu", vNPU, pNPU, mach.GPU, mach.DRAM,
		e.Fences, device.DefaultConfig())

	const frames = 60
	results := 0
	env.Spawn("scene-detect-app", func(p *sim.Proc) {
		// Camera frames flow into the NPU; detections flow to the GPU for
		// overlay rendering — two new data flows the prefetch engine has
		// never seen and will learn within a couple of frames.
		frameRegion, err := e.Manager.Alloc(3840 * 2160 * 2)
		if err != nil {
			panic(err)
		}
		outRegion, err := e.Manager.Alloc(1 << 20) // detection tensors
		if err != nil {
			panic(err)
		}
		for i := 0; i < frames; i++ {
			cap := e.Camera.Submit(p, device.Op{
				Kind: device.OpWrite, Region: frameRegion.ID, Exec: time.Millisecond,
			})
			infer := npu.Submit(p, device.Op{
				Kind: device.OpRead, Region: frameRegion.ID,
				Exec: 4 * time.Millisecond, After: cap,
			})
			detect := npu.Submit(p, device.Op{
				Kind: device.OpWrite, Region: outRegion.ID,
				Exec: 100 * time.Microsecond, After: infer,
			})
			overlay := e.GPU.Submit(p, device.Op{
				Kind: device.OpRead, Region: outRegion.ID,
				Exec: 500 * time.Microsecond, After: detect,
			})
			overlay.Ready.Wait(p)
			results++
			p.Sleep(16 * time.Millisecond)
		}
	})
	env.RunUntil(5 * time.Second)

	st := e.Manager.Stats()
	tw := e.Manager.Twin()
	fmt.Printf("ported NPU processed %d frames\n\n", results)
	fmt.Printf("flows the SVM framework learned (physical layer):\n")
	for _, edge := range tw.Physical.Edges() {
		fmt.Printf("  %s -> %s (%d uses)\n",
			nodeNames(tw, edge.Sources), nodeNames(tw, edge.Dests), edge.Uses)
	}
	fmt.Printf("\nprefetch hits %d | waits %d | demand fetches %d | prediction %.0f%%\n",
		st.PrefetchHits, st.PrefetchWaits, st.DemandFetches, st.PredictionAccuracy()*100)
	fmt.Printf("NPU device stats: %+v\n", npu.Stats())
	fmt.Println("\nthe NPU never touched coherence, fences, or hypergraphs directly —")
	fmt.Println("that is the unified SVM framework doing the §6 porting contract.")
}

func nodeNames(tw *hypergraph.Twin, ids []hypergraph.NodeID) string {
	s := ""
	for i, id := range ids {
		if i > 0 {
			s += "+"
		}
		s += tw.Physical.NodeName(id)
	}
	return s
}
