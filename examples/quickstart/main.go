// Quickstart: build a vSoC emulator on a simulated high-end desktop, then
// drive a camera -> ISP -> GPU -> display frame by hand through the SVM
// framework — the Fig. 3 shared-memory interface, virtual command fences,
// and the prefetch coherence protocol, all visible at API level.
package main

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/emulator"
	"repro/internal/hostsim"
	"repro/internal/sim"
)

func main() {
	// A deterministic simulated world: host machine + assembled emulator.
	env := sim.NewEnv(42)
	defer env.Close()
	mach := hostsim.HighEndDesktop(env)
	e := emulator.New(env, mach, emulator.VSoC())

	fmt.Printf("emulator %q on %q, codec hw=%v, SVM protocol=%s\n\n",
		e.Preset.Name, mach.Name, e.CodecIsHardware(), e.Manager.Kind())

	env.Spawn("app", func(p *sim.Proc) {
		// 1. Allocate a shared buffer through the HAL (Fig. 3 interface).
		const frameBytes = 3840 * 2160 * 2 // one UHD camera frame
		h, err := e.HAL.Alloc(p, frameBytes)
		if err != nil {
			panic(err)
		}
		region, _ := e.HAL.RegionOf(h)
		fmt.Printf("t=%-8v allocated region %d (%d MiB) behind handle %d\n",
			p.Now(), region, frameBytes>>20, h)

		// 2. Drive ten frames through the pipeline. Each device op is a
		// guest-driver command; fences order cross-device accesses in the
		// host without blocking the drivers (§3.4).
		for frame := 0; frame < 10; frame++ {
			capture := e.Camera.Submit(p, device.Op{
				Kind: device.OpWrite, Region: region,
				Exec: time.Millisecond, // sensor readout
			})
			convert := e.ISP.Submit(p, device.Op{
				Kind: device.OpRead, Region: region,
				Exec:  e.ISPCost(8.3), // in-GPU colorspace conversion
				After: capture,
			})
			render := e.GPU.Submit(p, device.Op{
				Kind: device.OpRead, Region: region,
				Exec:  e.RenderCost(8.3),
				After: convert,
			})
			done := e.Display.Submit(p, device.Op{
				Kind: device.OpExec, Exec: 200 * time.Microsecond, After: render,
			})
			done.Ready.Wait(p)
			fmt.Printf("t=%-8v frame %d presented\n", p.Now().Round(time.Microsecond), frame)
			p.Sleep(16 * time.Millisecond) // the slack prefetch hides under
		}

		// 3. What the SVM framework did underneath.
		st := e.Manager.Stats()
		fmt.Printf("\nSVM internals after 10 frames:\n")
		fmt.Printf("  coherence copies:   %d, mean %.2f ms, all host-direct: %v\n",
			st.CoherenceCost.Count(), st.CoherenceCost.Mean(), st.DirectShare() == 1)
		fmt.Printf("  prefetch hits:      %d arrived early, %d awaited in flight, %d demand fetches\n",
			st.PrefetchHits, st.PrefetchWaits, st.DemandFetches)
		fmt.Printf("  device prediction:  %.0f%% over %d predictions\n",
			st.PredictionAccuracy()*100, st.PredTotal)
		fmt.Printf("  flows discovered:   %d virtual / %d physical hyperedges\n",
			e.Manager.Twin().Virtual.NumEdges(), e.Manager.Twin().Physical.NumEdges())
		fmt.Printf("  fence table:        %d allocs, peak %d/%d slots\n",
			e.Fences.Allocs(), e.Fences.Peak(), e.Fences.Capacity())

		if err := e.HAL.Free(p, h); err != nil {
			panic(err)
		}
	})

	env.RunUntil(2 * time.Second)
	fmt.Println("\ndone.")
}
